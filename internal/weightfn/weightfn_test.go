package weightfn

import (
	"testing"

	"tango/internal/blkio"
	"tango/internal/errmetric"
)

func calibNRMSE(t *testing.T) *Func {
	t.Helper()
	f, err := New(Calibration{
		Metric:         errmetric.NRMSE,
		MaxCardinality: 1e6,
		MinCardinality: 100,
		LoosestBound:   0.1,
		TightestBound:  1e-5,
		MaxPriority:    PriorityHigh,
		MinPriority:    PriorityLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCornersMapToWeightRange(t *testing.T) {
	f := calibNRMSE(t)
	max := f.Weight(1e6, 0.1, PriorityHigh)
	min := f.Weight(100, 1e-5, PriorityLow)
	if max != blkio.MaxWeight {
		t.Fatalf("max corner weight = %d, want %d", max, blkio.MaxWeight)
	}
	if min != blkio.MinWeight {
		t.Fatalf("min corner weight = %d, want %d", min, blkio.MinWeight)
	}
}

func TestWeightMonotoneInCardinality(t *testing.T) {
	f := calibNRMSE(t)
	if !(f.Weight(1e6, 0.01, 5) >= f.Weight(1e4, 0.01, 5)) {
		t.Fatal("weight should grow with cardinality")
	}
	if !(f.Weight(1e4, 0.01, 5) >= f.Weight(100, 0.01, 5)) {
		t.Fatal("weight should grow with cardinality (low range)")
	}
}

func TestWeightMonotoneInPriority(t *testing.T) {
	f := calibNRMSE(t)
	w1 := f.Weight(1e5, 0.01, PriorityLow)
	w5 := f.Weight(1e5, 0.01, PriorityMedium)
	w10 := f.Weight(1e5, 0.01, PriorityHigh)
	if !(w1 <= w5 && w5 <= w10) {
		t.Fatalf("priority not monotone: %d %d %d", w1, w5, w10)
	}
	if w1 == w10 {
		t.Fatalf("priority has no effect: %d %d %d", w1, w5, w10)
	}
}

func TestWeightFavorsLowAccuracy(t *testing.T) {
	// Paper Fig 15: as the retrieved accuracy tightens from 1e-2 to
	// 1e-4, the weight is lowered.
	f := calibNRMSE(t)
	loose := f.Weight(1e5, 1e-2, PriorityHigh)
	tight := f.Weight(1e5, 1e-4, PriorityHigh)
	if !(loose > tight) {
		t.Fatalf("loose %d should outweigh tight %d", loose, tight)
	}
}

func TestWeightClamped(t *testing.T) {
	f := calibNRMSE(t)
	if w := f.Weight(1e12, 0.5, 100); w != blkio.MaxWeight {
		t.Fatalf("overflow weight = %d", w)
	}
	if w := f.Weight(0, 1e-5, 0.001); w < blkio.MinWeight {
		t.Fatalf("underflow weight = %d", w)
	}
	if w := f.Weight(-5, 0.01, 5); w < blkio.MinWeight || w > blkio.MaxWeight {
		t.Fatalf("negative cardinality weight = %d", w)
	}
}

func TestPSNRForm(t *testing.T) {
	f, err := New(Calibration{
		Metric:         errmetric.PSNR,
		MaxCardinality: 1e6,
		MinCardinality: 100,
		LoosestBound:   30,
		TightestBound:  80,
		MaxPriority:    PriorityHigh,
		MinPriority:    PriorityLow,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Looser bound (30 dB) gets more weight than tighter (80 dB).
	if !(f.Weight(1e5, 30, 5) > f.Weight(1e5, 80, 5)) {
		t.Fatal("PSNR form should favor the low-accuracy bucket")
	}
	if f.Weight(1e6, 30, PriorityHigh) != blkio.MaxWeight {
		t.Fatal("PSNR max corner")
	}
}

func TestAblationOrderingFig13(t *testing.T) {
	// For the loosest bucket of a high-priority app, progressively
	// enabling priority then accuracy must not lower the weight —
	// that's the Fig 13 latency ordering.
	cardOnly := calibNRMSE(t)
	cardOnly.DisablePriority()
	cardOnly.DisableAccuracy()

	cardPrio := calibNRMSE(t)
	cardPrio.DisableAccuracy()

	full := calibNRMSE(t)

	card, bound, p := 2e5, 0.01, PriorityHigh
	w1 := cardOnly.Weight(card, bound, p)
	w2 := cardPrio.Weight(card, bound, p)
	w3 := full.Weight(card, bound, p)
	if !(w1 <= w2 && w2 <= w3) {
		t.Fatalf("ablation ordering violated: %d %d %d", w1, w2, w3)
	}
	if w1 == w3 {
		t.Fatalf("ablation indistinguishable: %d %d %d", w1, w2, w3)
	}
}

func TestCalibrationValidation(t *testing.T) {
	base := Calibration{
		Metric:         errmetric.NRMSE,
		MaxCardinality: 1e6, MinCardinality: 100,
		LoosestBound: 0.1, TightestBound: 1e-5,
		MaxPriority: 10, MinPriority: 1,
	}
	bad := base
	bad.MinCardinality = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero MinCardinality accepted")
	}
	bad = base
	bad.MinCardinality = 2e6
	if _, err := New(bad); err == nil {
		t.Fatal("inverted cardinality range accepted")
	}
	bad = base
	bad.MinPriority = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero priority accepted")
	}
	bad = base
	bad.LoosestBound, bad.TightestBound = 1e-5, 0.1
	if _, err := New(bad); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestDegenerateCalibrationFallsBack(t *testing.T) {
	f, err := New(Calibration{
		Metric:         errmetric.NRMSE,
		MaxCardinality: 100, MinCardinality: 100,
		LoosestBound: 0.01, TightestBound: 0.01,
		MaxPriority: 5, MinPriority: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := f.Weight(100, 0.01, 5)
	if w < blkio.MinWeight || w > blkio.MaxWeight {
		t.Fatalf("degenerate weight = %d", w)
	}
}

func TestCoefficientsExposed(t *testing.T) {
	f := calibNRMSE(t)
	k2, b2 := f.Coefficients()
	if k2 <= 0 {
		t.Fatalf("k2 = %v, want > 0", k2)
	}
	_ = b2
}
