// Package weightfn implements the paper's storage-layer weight function
// (§III-C step 3): the blkio weight applied while retrieving the
// augmentation bucket Aug_{ε_m} is
//
//	w = k2 · |Aug_{ε_m}|·p / |lg ε_m| + b2   (NRMSE error control)
//	w = k2 · |Aug_{ε_m}|·p / |ε_m|     + b2   (PSNR error control)
//
// so that weight grows with the bucket's cardinality and the application's
// priority, and shrinks as the bucket's accuracy level tightens (lower
// accuracy data is more urgent — it carries the critical structure and
// gates interactive analysis). k2 and b2 are calibrated so the extreme
// corner cases map onto the container weight range [100, 1000].
package weightfn

import (
	"fmt"
	"math"

	"tango/internal/blkio"
	"tango/internal/errmetric"
)

// Priorities used in the paper's evaluation (§IV-A).
const (
	PriorityLow    = 1.0
	PriorityMedium = 5.0
	PriorityHigh   = 10.0
)

// Func is a calibrated weight function.
type Func struct {
	metric errmetric.Kind
	k2, b2 float64

	// Ablation switches (Fig 13): when false the corresponding term is
	// replaced by its calibration midpoint so it stops influencing the
	// weight.
	usePriority bool
	useAccuracy bool

	// calibration record
	maxScore, minScore float64
	tightest           float64
}

// Calibration describes the extreme corners used to solve for k2 and b2:
// the (largest cardinality, lowest accuracy, highest priority) corner maps
// to blkio.MaxWeight and the (smallest cardinality, highest accuracy,
// lowest priority) corner to blkio.MinWeight (§III-C step 3).
type Calibration struct {
	Metric errmetric.Kind

	MaxCardinality float64 // largest bucket size (entries)
	MinCardinality float64 // smallest bucket size (> 0)

	LoosestBound  float64 // lowest accuracy ε_1
	TightestBound float64 // highest accuracy ε_b

	MaxPriority float64
	MinPriority float64
}

// accuracyTerm maps a bound to the denominator of the weight formula.
func accuracyTerm(metric errmetric.Kind, bound float64) float64 {
	var t float64
	if metric == errmetric.NRMSE {
		t = math.Abs(math.Log2(bound))
	} else {
		t = math.Abs(bound)
	}
	if t < 1e-9 {
		t = 1e-9 // guard ε=1 (lg=0) or ε=0 dB
	}
	return t
}

// New calibrates a weight function from the corner conditions.
func New(c Calibration) (*Func, error) {
	if c.MinCardinality <= 0 || c.MaxCardinality < c.MinCardinality {
		return nil, fmt.Errorf("weightfn: bad cardinality range [%v, %v]", c.MinCardinality, c.MaxCardinality)
	}
	if c.MinPriority <= 0 || c.MaxPriority < c.MinPriority {
		return nil, fmt.Errorf("weightfn: bad priority range [%v, %v]", c.MinPriority, c.MaxPriority)
	}
	if !c.Metric.Better(c.TightestBound, c.LoosestBound) && c.TightestBound != c.LoosestBound {
		return nil, fmt.Errorf("weightfn: tightest bound %v is looser than %v", c.TightestBound, c.LoosestBound)
	}
	// score = |Aug|·p / accuracyTerm(ε). The loosest bound gives the
	// SMALLEST accuracy term for NRMSE near 1? No: for NRMSE, looser
	// bound (larger ε) gives smaller |lg ε|, hence a larger score —
	// matching the paper's intent that low-accuracy buckets get high
	// weight. For PSNR, looser bound (smaller dB) gives a smaller
	// denominator, again a larger score.
	maxScore := c.MaxCardinality * c.MaxPriority / accuracyTerm(c.Metric, c.LoosestBound)
	minScore := c.MinCardinality * c.MinPriority / accuracyTerm(c.Metric, c.TightestBound)
	if maxScore <= minScore {
		// Degenerate calibration (single bound, single priority, equal
		// cardinalities): fall back to a flat mid-range function.
		return &Func{
			metric: c.Metric, k2: 0, b2: (blkio.MinWeight + blkio.MaxWeight) / 2,
			usePriority: true, useAccuracy: true,
			maxScore: maxScore, minScore: minScore, tightest: c.TightestBound,
		}, nil
	}
	k2 := float64(blkio.MaxWeight-blkio.MinWeight) / (maxScore - minScore)
	b2 := blkio.MinWeight - k2*minScore
	return &Func{
		metric: c.Metric, k2: k2, b2: b2,
		usePriority: true, useAccuracy: true,
		maxScore: maxScore, minScore: minScore, tightest: c.TightestBound,
	}, nil
}

// DisablePriority makes the function ignore the priority term (Fig 13
// ablation: "cardinality only" / "cardinality+accuracy").
func (f *Func) DisablePriority() { f.usePriority = false }

// DisableAccuracy makes the function ignore the accuracy term (Fig 13
// ablation: "cardinality+priority").
func (f *Func) DisableAccuracy() { f.useAccuracy = false }

// Coefficients returns the calibrated (k2, b2).
func (f *Func) Coefficients() (k2, b2 float64) { return f.k2, f.b2 }

// Weight returns the blkio weight for retrieving a bucket of the given
// cardinality at accuracy level bound with application priority p,
// clamped to the valid blkio range.
func (f *Func) Weight(cardinality float64, bound float64, priority float64) int {
	if cardinality < 0 {
		cardinality = 0
	}
	p := priority
	if !f.usePriority {
		p = 1
	}
	score := cardinality * p
	if f.useAccuracy {
		score /= accuracyTerm(f.metric, bound)
	} else {
		score /= accuracyTerm(f.metric, f.referenceBound())
	}
	w := f.k2*score + f.b2
	return blkio.ClampWeight(int(math.Round(w)))
}

// referenceBound is the accuracy value substituted when the accuracy term
// is disabled: the tightest calibrated bound. Disabling the term then
// prices every bucket as if it were the highest-accuracy one (the largest
// denominator), which is exactly what the Fig 13 ablation contrasts: the
// full function boosts low-accuracy buckets above that floor.
func (f *Func) referenceBound() float64 { return f.tightest }
