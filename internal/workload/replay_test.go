package workload

import (
	"bytes"
	"strings"
	"testing"

	"tango/internal/device"
)

func TestParseTrace(t *testing.T) {
	in := `# comment
10,1000,w
5, 500 ,r

20,2000
`
	ops, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("ops = %d", len(ops))
	}
	// Sorted by time.
	if ops[0].T != 5 || !ops[0].Read || ops[0].Bytes != 500 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].T != 10 || ops[1].Read {
		t.Fatalf("op1 = %+v", ops[1])
	}
	if ops[2].T != 20 || ops[2].Bytes != 2000 {
		t.Fatalf("op2 = %+v", ops[2])
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"x,100",
		"5,y",
		"5,100,z",
		"5",
		"5,100,w,extra",
		"-1,100",
		"5,-100",
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted", bad)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	ops := []TraceOp{{T: 1, Bytes: 100}, {T: 2.5, Bytes: 200, Read: true}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReplayMatchesLaunchNoise(t *testing.T) {
	// A synthesized trace of a jitter-free noise must produce the same
	// device activity as LaunchNoise with Jitter=0 (periods are long
	// enough that checkpoints never overrun).
	spec := Noise{Name: "nz", Period: 100, CheckpointBytes: 10 * device.MB, Phase: 7}
	runLive := func() float64 {
		n, hdd := newTestNode()
		LaunchNoise(n, hdd, spec)
		if err := n.Engine().Run(1000); err != nil {
			t.Fatal(err)
		}
		return n.Container("nz").Cgroup().BytesWritten()
	}
	runReplay := func() float64 {
		n, hdd := newTestNode()
		ops := SynthesizeTrace(spec, 10)
		ReplayTrace(n, hdd, "rp", ops)
		if err := n.Engine().Run(1000); err != nil {
			t.Fatal(err)
		}
		return n.Container("rp").Cgroup().BytesWritten()
	}
	if a, b := runLive(), runReplay(); a != b {
		t.Fatalf("live %v vs replay %v", a, b)
	}
}

func TestReplayOpenLoopCatchesUp(t *testing.T) {
	// Ops scheduled faster than the device can serve must be issued
	// back-to-back, not dropped.
	n, hdd := newTestNode() // 100 MB/s
	ops := []TraceOp{
		{T: 0, Bytes: 500 * device.MB}, // takes 5s
		{T: 1, Bytes: 500 * device.MB}, // arrives during op 1
		{T: 2, Bytes: 500 * device.MB}, // ditto
	}
	c := ReplayTrace(n, hdd, "rp", ops)
	if err := n.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := c.Cgroup().BytesWritten(); got != 1500*float64(device.MB) {
		t.Fatalf("bytes = %v", got)
	}
	if now := n.Engine().Now(); now < 14.9 || now > 15.5 {
		t.Fatalf("replay finished at %v, want ~15s", now)
	}
}

func TestSynthesizeTraceShape(t *testing.T) {
	ops := SynthesizeTrace(Noise{Period: 60, CheckpointBytes: 42, Phase: 3}, 4)
	if len(ops) != 4 {
		t.Fatalf("ops = %d", len(ops))
	}
	for i, op := range ops {
		if op.T != 3+float64(i)*60 || op.Bytes != 42 || op.Read {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
}
