// Package workload generates the I/O workloads of the paper's evaluation:
// periodic checkpointing interferers (Table IV), the generic HPC
// application pattern I(C^x W)* F (§II "HPC application pattern"), and
// non-periodic random noise (compilation, shell commands) that the DFT
// estimator is supposed to filter out.
package workload

import (
	"math/rand"

	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/sim"
)

// Noise describes one periodic interfering container: every Period
// seconds it writes CheckpointBytes to the target device, mimicking
// simulation checkpointing activity.
type Noise struct {
	Name            string
	Period          float64 // seconds
	CheckpointBytes float64
	Phase           float64 // initial offset before the first checkpoint
	// Jitter is the per-interval timing spread as a fraction of Period
	// (0 = strictly periodic). Real checkpoint loops drift — compute
	// phases are data-dependent — so intervals are Period·(1 ± Jitter),
	// drawn deterministically from Seed. Without drift, a period that is
	// an exact multiple of an analytics period would alias (the burst
	// always lands at the same offset inside the analysis step).
	Jitter float64
	Seed   int64
}

// PaperNoiseSet returns the six interfering containers of Table IV.
// Phases are staggered and a small drift is applied so the aggregate
// interference is a rich quasi-periodic signal, as on a real node.
func PaperNoiseSet() []Noise {
	return []Noise{
		{Name: "noise1", Period: 200, CheckpointBytes: 768 * device.MB, Phase: 13, Jitter: 0.08, Seed: 1001},
		{Name: "noise2", Period: 225, CheckpointBytes: 512 * device.MB, Phase: 47, Jitter: 0.08, Seed: 1002},
		{Name: "noise3", Period: 360, CheckpointBytes: 512 * device.MB, Phase: 89, Jitter: 0.08, Seed: 1003},
		{Name: "noise4", Period: 180, CheckpointBytes: 1024 * device.MB, Phase: 31, Jitter: 0.08, Seed: 1004},
		{Name: "noise5", Period: 150, CheckpointBytes: 1024 * device.MB, Phase: 67, Jitter: 0.08, Seed: 1005},
		{Name: "noise6", Period: 120, CheckpointBytes: 1024 * device.MB, Phase: 101, Jitter: 0.08, Seed: 1006},
	}
}

// Handle controls a running interferer: workload churn (an interferer
// leaving mid-run, or its checkpoint cadence changing when the producing
// simulation is rescaled) mutates the handle, and the interferer's loop
// observes the change at its next iteration. All methods must be called
// from sim context (same engine).
type Handle struct {
	name    string
	stopped bool
	period  float64 // 0 = keep the configured period
}

// Name returns the interferer name.
func (h *Handle) Name() string { return h.name }

// Stop makes the interferer exit after the checkpoint currently being
// written (the competing job left the node).
func (h *Handle) Stop() { h.stopped = true }

// Stopped reports whether Stop was called.
func (h *Handle) Stopped() bool { return h.stopped }

// SetPeriod changes the checkpoint period from the next interval on
// (p <= 0 restores the configured period).
func (h *Handle) SetPeriod(p float64) {
	if p <= 0 {
		p = 0
	}
	h.period = p
}

// LaunchNoise starts one interfering container on node writing to dev.
// The period is measured start-to-start: if a checkpoint takes longer than
// the period under contention, the next one starts immediately after
// (back-to-back), which is how checkpointing loops behave in practice.
func LaunchNoise(node *container.Node, dev *device.Device, n Noise) *container.Container {
	c, _ := LaunchNoiseControlled(node, dev, n)
	return c
}

// LaunchNoiseControlled is LaunchNoise returning a churn handle alongside
// the container, so the interferer can be stopped or re-paced mid-run
// (see internal/fault).
func LaunchNoiseControlled(node *container.Node, dev *device.Device, n Noise) (*container.Container, *Handle) {
	rng := rand.New(rand.NewSource(n.Seed))
	h := &Handle{name: n.Name}
	c := node.MustLaunch(n.Name, func(c *container.Container, p *sim.Proc) {
		p.Sleep(n.Phase)
		for !h.stopped {
			start := p.Now()
			c.Write(p, dev, n.CheckpointBytes)
			period := n.Period
			if h.period > 0 {
				period = h.period
			}
			if n.Jitter > 0 {
				period *= 1 + n.Jitter*(2*rng.Float64()-1)
			}
			wait := period - (p.Now() - start)
			if wait > 0 {
				p.Sleep(wait)
			}
		}
	})
	return c, h
}

// LaunchNoiseSet starts the given interferers and returns their containers.
func LaunchNoiseSet(node *container.Node, dev *device.Device, set []Noise) []*container.Container {
	out := make([]*container.Container, 0, len(set))
	for _, n := range set {
		out = append(out, LaunchNoise(node, dev, n))
	}
	return out
}

// LaunchNoiseSetControlled starts the given interferers and returns their
// churn handles keyed by name.
func LaunchNoiseSetControlled(node *container.Node, dev *device.Device, set []Noise) map[string]*Handle {
	out := make(map[string]*Handle, len(set))
	for _, n := range set {
		_, h := LaunchNoiseControlled(node, dev, n)
		out[n.Name] = h
	}
	return out
}

// RandomNoise launches a container issuing small, aperiodic writes
// (compilation artifacts, shell commands). Inter-arrival times are
// exponential with the given mean; sizes are uniform in [minB, maxB].
// This is the low-intensity random activity the paper says can be
// neglected / filtered by DFT thresholding.
func RandomNoise(node *container.Node, dev *device.Device, name string, meanGap, minB, maxB float64, seed int64) *container.Container {
	rng := rand.New(rand.NewSource(seed))
	return node.MustLaunch(name, func(c *container.Container, p *sim.Proc) {
		for {
			p.Sleep(rng.ExpFloat64() * meanGap)
			size := minB + rng.Float64()*(maxB-minB)
			c.Write(p, dev, size)
		}
	})
}

// PhasedApp runs the canonical HPC pattern I(C^x W)* F: an init phase,
// then rounds of x compute iterations (each ComputeIter seconds) followed
// by an I/O phase writing WriteBytes, for Rounds rounds, then a finalize
// phase.
type PhasedApp struct {
	Name        string
	InitTime    float64
	ComputeIter float64
	X           int // compute iterations per I/O phase
	WriteBytes  float64
	Rounds      int // 0 = run forever
	FinalTime   float64
}

// Launch starts the phased application writing to dev.
func (a PhasedApp) Launch(node *container.Node, dev *device.Device) *container.Container {
	return node.MustLaunch(a.Name, func(c *container.Container, p *sim.Proc) {
		p.Sleep(a.InitTime)
		for r := 0; a.Rounds == 0 || r < a.Rounds; r++ {
			for i := 0; i < a.X; i++ {
				p.Sleep(a.ComputeIter)
			}
			c.Write(p, dev, a.WriteBytes)
		}
		p.Sleep(a.FinalTime)
	})
}

// StepFunc is invoked once per analytics step with the step index; it
// returns the number of bytes the step wants to read.
type StepFunc func(step int) float64

// PeriodicReader launches a container that performs one read of
// bytesFn(step) from dev every period seconds (period measured
// start-to-start) and reports each step's perceived bandwidth through
// observe. This is the shape of the paper's data analytics containers,
// which "retrieve and analyze data iteratively from the shared disk".
func PeriodicReader(node *container.Node, dev *device.Device, name string,
	period float64, steps int, bytesFn StepFunc,
	observe func(step int, start, ioTime, bytes float64)) *container.Container {
	return node.MustLaunch(name, func(c *container.Container, p *sim.Proc) {
		for s := 0; s < steps; s++ {
			start := p.Now()
			bytes := bytesFn(s)
			ioTime := c.Read(p, dev, bytes)
			if observe != nil {
				observe(s, start, ioTime, bytes)
			}
			wait := period - (p.Now() - start)
			if wait > 0 {
				p.Sleep(wait)
			}
		}
	})
}
