package workload

import (
	"math"
	"testing"

	"tango/internal/container"
	"tango/internal/device"
)

func newTestNode() (*container.Node, *device.Device) {
	n := container.NewNode("n0")
	hdd := n.MustAddDevice(device.Params{Name: "hdd", PeakBandwidth: 100 * device.MB, MinEfficiency: 1})
	return n, hdd
}

func TestPaperNoiseSetMatchesTableIV(t *testing.T) {
	set := PaperNoiseSet()
	if len(set) != 6 {
		t.Fatalf("len = %d, want 6", len(set))
	}
	wantPeriods := []float64{200, 225, 360, 180, 150, 120}
	wantMB := []float64{768, 512, 512, 1024, 1024, 1024}
	for i, n := range set {
		if n.Period != wantPeriods[i] {
			t.Errorf("noise %d period = %v, want %v", i+1, n.Period, wantPeriods[i])
		}
		if n.CheckpointBytes != wantMB[i]*device.MB {
			t.Errorf("noise %d size = %v, want %v MB", i+1, n.CheckpointBytes, wantMB[i])
		}
	}
}

func TestNoisePeriodicity(t *testing.T) {
	n, hdd := newTestNode()
	// Small checkpoint so writes are short relative to the period.
	LaunchNoise(n, hdd, Noise{Name: "nz", Period: 100, CheckpointBytes: 10 * device.MB, Phase: 5})
	if err := n.Engine().Run(1000); err != nil {
		t.Fatal(err)
	}
	cg := n.Container("nz").Cgroup()
	// Starts at 5, 105, 205, ... 905: 10 checkpoints by t=1000.
	want := 10 * 10 * float64(device.MB)
	if got := cg.BytesWritten(); got != want {
		t.Fatalf("bytes written = %v, want %v", got, want)
	}
}

func TestNoiseBackToBackWhenOverloaded(t *testing.T) {
	n, hdd := newTestNode()
	// Each checkpoint takes 20s (2000MB at 100MB/s) but period is 10s:
	// the writer must go back-to-back without negative sleeps.
	LaunchNoise(n, hdd, Noise{Name: "nz", Period: 10, CheckpointBytes: 2000 * device.MB})
	if err := n.Engine().Run(100); err != nil {
		t.Fatal(err)
	}
	cg := n.Container("nz").Cgroup()
	if got := cg.BytesWritten(); got != 5*2000*float64(device.MB) {
		t.Fatalf("bytes written = %v, want 5 checkpoints", got)
	}
}

func TestLaunchNoiseSetStartsAll(t *testing.T) {
	n, hdd := newTestNode()
	cs := LaunchNoiseSet(n, hdd, PaperNoiseSet())
	if len(cs) != 6 {
		t.Fatalf("containers = %d", len(cs))
	}
	if err := n.Engine().Run(500); err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if c.Cgroup().BytesWritten() == 0 {
			t.Errorf("noise %s wrote nothing by t=500", c.Name())
		}
	}
}

func TestRandomNoiseDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) float64 {
		n, hdd := newTestNode()
		RandomNoise(n, hdd, "rnd", 10, 1*device.MB, 5*device.MB, seed)
		if err := n.Engine().Run(1000); err != nil {
			t.Fatal(err)
		}
		return n.Container("rnd").Cgroup().BytesWritten()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different totals: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("random noise wrote nothing")
	}
	if c := run(8); c == a {
		t.Fatalf("different seeds should (almost surely) differ: %v", c)
	}
}

func TestPhasedAppPattern(t *testing.T) {
	n, hdd := newTestNode()
	app := PhasedApp{
		Name:        "sim",
		InitTime:    10,
		ComputeIter: 2,
		X:           5,
		WriteBytes:  100 * device.MB,
		Rounds:      3,
		FinalTime:   4,
	}
	c := app.Launch(n, hdd)
	if err := n.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := c.Cgroup().BytesWritten(); got != 3*100*float64(device.MB) {
		t.Fatalf("bytes = %v", got)
	}
	// init 10 + 3 rounds of (10 compute + 1 write) + final 4 = 47
	if now := n.Engine().Now(); math.Abs(now-47) > 0.01 {
		t.Fatalf("finished at %v, want ~47", now)
	}
}

func TestPeriodicReaderObservations(t *testing.T) {
	n, hdd := newTestNode()
	type obs struct{ start, io, bytes float64 }
	var seen []obs
	PeriodicReader(n, hdd, "reader", 60, 5,
		func(step int) float64 { return 60 * device.MB },
		func(step int, start, ioTime, bytes float64) {
			seen = append(seen, obs{start, ioTime, bytes})
		})
	if err := n.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("steps = %d", len(seen))
	}
	for i, o := range seen {
		if math.Abs(o.start-float64(i)*60) > 1e-9 {
			t.Errorf("step %d start = %v", i, o.start)
		}
		if math.Abs(o.io-0.6) > 1e-9 { // 60MB at 100MB/s
			t.Errorf("step %d io = %v, want 0.6", i, o.io)
		}
	}
}

func TestPeriodicReaderUnderInterference(t *testing.T) {
	// Perceived bandwidth must drop while a noise checkpoint overlaps.
	n, hdd := newTestNode()
	LaunchNoise(n, hdd, Noise{Name: "nz", Period: 1e6, CheckpointBytes: 3000 * device.MB, Phase: 50})
	var ioTimes []float64
	PeriodicReader(n, hdd, "reader", 60, 3,
		func(step int) float64 { return 30 * device.MB },
		func(step int, start, ioTime, bytes float64) { ioTimes = append(ioTimes, ioTime) })
	if err := n.Engine().Run(200); err != nil {
		t.Fatal(err)
	}
	// step 0 at t=0 is clean (0.3s); step 1 at t=60 overlaps the noise
	// write (t=50..80): contended.
	if !(ioTimes[1] > ioTimes[0]*1.5) {
		t.Fatalf("interference not visible: %v", ioTimes)
	}
}
