package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tango/internal/container"
	"tango/internal/device"
	"tango/internal/sim"
)

// TraceOp is one recorded I/O operation to replay: at virtual time T,
// transfer Bytes (write unless Read is set).
type TraceOp struct {
	T     float64
	Bytes float64
	Read  bool
}

// ParseTrace reads a CSV-like trace: one op per line,
// "time_seconds,bytes[,r|w]". Blank lines and lines starting with '#' are
// skipped. Ops are returned sorted by time.
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	var ops []TraceOp
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("workload: trace line %d: want time,bytes[,r|w]", lineNo)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad time %q", lineNo, parts[0])
		}
		b, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil || b < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad bytes %q", lineNo, parts[1])
		}
		op := TraceOp{T: t, Bytes: b}
		if len(parts) == 3 {
			switch strings.TrimSpace(parts[2]) {
			case "r", "R":
				op.Read = true
			case "w", "W", "":
			default:
				return nil, fmt.Errorf("workload: trace line %d: bad direction %q", lineNo, parts[2])
			}
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].T < ops[j].T })
	return ops, nil
}

// ReplayTrace launches a container that replays the ops against dev: each
// op is issued at its recorded time (or immediately, if the previous op
// is still in flight past that time — open-loop arrival with a closed-
// loop device, like a real replayer). Returns the container.
func ReplayTrace(node *container.Node, dev *device.Device, name string, ops []TraceOp) *container.Container {
	return node.MustLaunch(name, func(c *container.Container, p *sim.Proc) {
		for _, op := range ops {
			if wait := op.T - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
			if op.Read {
				c.Read(p, dev, op.Bytes)
			} else {
				c.Write(p, dev, op.Bytes)
			}
		}
	})
}

// SynthesizeTrace converts a Noise spec into an explicit trace of n
// checkpoints — useful for exporting the Table IV workload for external
// replay, and round-trip tested against LaunchNoise.
func SynthesizeTrace(noise Noise, n int) []TraceOp {
	ops := make([]TraceOp, 0, n)
	t := noise.Phase
	for i := 0; i < n; i++ {
		ops = append(ops, TraceOp{T: t, Bytes: noise.CheckpointBytes})
		t += noise.Period
	}
	return ops
}

// WriteTrace serializes ops in the ParseTrace format.
func WriteTrace(w io.Writer, ops []TraceOp) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# time_seconds,bytes,direction"); err != nil {
		return err
	}
	for _, op := range ops {
		dir := "w"
		if op.Read {
			dir = "r"
		}
		if _, err := fmt.Fprintf(bw, "%g,%g,%s\n", op.T, op.Bytes, dir); err != nil {
			return err
		}
	}
	return bw.Flush()
}
