package tango_test

// Cross-module integration tests exercising the whole stack through the
// public facade: 1D/3D datasets end to end, failure injection, and
// whole-run determinism.

import (
	"math"
	"math/rand"
	"testing"

	"tango"
)

func field3D(n int, seed int64) *tango.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tango.NewTensor(n, n, n)
	d := t.Data()
	i := 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				d[i] = math.Sin(4*math.Pi*float64(x)/float64(n))*
					math.Cos(2*math.Pi*float64(y)/float64(n))*
					math.Cos(6*math.Pi*float64(z)/float64(n)) +
					0.02*rng.NormFloat64()
				i++
			}
		}
	}
	return t
}

func TestEndToEnd3DDataset(t *testing.T) {
	orig := field3D(33, 5)
	h, err := tango.DecomposeTensor(orig, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Losslessness and bound satisfaction hold in 3D.
	if d := h.Recompose(h.TotalEntries()).AbsDiffMax(orig); d > 1e-12*orig.Range() {
		t.Fatalf("3D full recomposition diff %v", d)
	}
	for _, r := range h.Rungs() {
		if acc := h.Achieved(orig, r.Cursor); acc > r.Bound+1e-12 {
			t.Fatalf("3D rung %g achieved %v", r.Bound, acc)
		}
	}

	// And the full session pipeline runs on 3D data.
	node := tango.NewNode("n3d")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	tango.LaunchTableIVNoise(node, hdd, 2)
	store, err := tango.StageScaled(h, node.Tiers(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tango.NewSession("vol", store, tango.SessionConfig{
		Policy: tango.CrossLayer, ErrorControl: true, Bound: 0.01,
		Steps: 8, Window: 4, RefitEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(8*60 + 600); err != nil {
		t.Fatal(err)
	}
	if len(sess.Stats()) != 8 {
		t.Fatalf("steps = %d", len(sess.Stats()))
	}
}

func TestEndToEnd1DDataset(t *testing.T) {
	n := 4097
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/50) + 0.3*math.Sin(float64(i)/7)
	}
	h, err := tango.Decompose(data, []int{n}, tango.RefactorOptions{
		Levels: 5,
		Bounds: []float64{0.05, 0.005},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := tango.TensorFromData(data, n)
	for _, r := range h.Rungs() {
		if acc := h.Achieved(orig, r.Cursor); acc > r.Bound+1e-12 {
			t.Fatalf("1D rung %g achieved %v", r.Bound, acc)
		}
	}
	// 5 levels = 4 halvings: the base is ~1/16 of the points.
	if frac := h.DoFFraction(0); frac > 0.07 {
		t.Fatalf("1D 5-level base fraction = %.3f, want ~1/16", frac)
	}
}

func TestStagingFailureWhenFastTierFull(t *testing.T) {
	field := tango.CFDApp().Generate(129, 2)
	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	node := tango.NewNode("n")
	ssdParams := tango.SSD("ssd")
	ssdParams.Capacity = 1024 // 1 KB: nothing fits
	node.MustAddDevice(ssdParams)
	node.MustAddDevice(tango.HDD("hdd"))
	if _, err := tango.Stage(h, node.Tiers()); err == nil {
		t.Fatal("staging onto a full fast tier must fail")
	}
	// Rollback: a second, adequately-sized staging succeeds on the
	// same devices.
	node2 := tango.NewNode("n2")
	node2.MustAddDevice(tango.SSD("ssd"))
	node2.MustAddDevice(tango.HDD("hdd"))
	if _, err := tango.Stage(h, node2.Tiers()); err != nil {
		t.Fatalf("staging on healthy tiers failed: %v", err)
	}
}

func TestSessionReleaseFreesCapacityAfterRun(t *testing.T) {
	field := tango.GenASiSApp().Generate(65, 3)
	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	node := tango.NewNode("n")
	ssd := node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	store, err := tango.Stage(h, node.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	if ssd.Used() == 0 && hdd.Used() == 0 {
		t.Fatal("staging reserved nothing")
	}
	sess, err := tango.NewSession("s", store, tango.SessionConfig{Policy: tango.NoAdapt, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(1e6); err != nil {
		t.Fatal(err)
	}
	// The session's container released the ephemeral data on exit.
	if ssd.Used() != 0 || hdd.Used() != 0 {
		t.Fatalf("ephemeral data not erased: ssd=%v hdd=%v", ssd.Used(), hdd.Used())
	}
}

func TestWholeRunDeterminismAcrossStack(t *testing.T) {
	run := func() (float64, float64) {
		field := tango.XGCApp().Generate(129, 11)
		h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
			Levels: 3, Bounds: []float64{0.05},
		})
		if err != nil {
			t.Fatal(err)
		}
		node := tango.NewNode("n")
		node.MustAddDevice(tango.SSD("ssd"))
		hdd := node.MustAddDevice(tango.HDD("hdd"))
		tango.LaunchTableIVNoise(node, hdd, 6)
		store, err := tango.StageScaled(h, node.Tiers(), 2048)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := tango.NewSession("a", store, tango.SessionConfig{
			Policy: tango.CrossLayer, ErrorControl: true, Bound: 0.05,
			Steps: 20, Window: 8, RefitEvery: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Launch(node); err != nil {
			t.Fatal(err)
		}
		if err := node.Engine().Run(20*60 + 3600); err != nil {
			t.Fatal(err)
		}
		s := sess.Summary(0)
		return s.MeanIO, s.MeanBytes
	}
	io1, b1 := run()
	io2, b2 := run()
	if io1 != io2 || b1 != b2 {
		t.Fatalf("whole-stack run not deterministic: (%v,%v) vs (%v,%v)", io1, b1, io2, b2)
	}
}
