package tango_test

import (
	"bytes"
	"fmt"
	"testing"

	"tango"
	"tango/internal/fault"
	"tango/internal/harness"
	"tango/internal/runpool"
)

// runSmallScenario executes one compact end-to-end run (decompose,
// stage, interfere, retrieve under the cross-layer policy) and returns
// every observable output serialized to bytes: the encoded hierarchy,
// the per-step stats, and the summary.
func runSmallScenario(t *testing.T) []byte {
	t.Helper()
	app := tango.XGCApp()
	field := app.Generate(65, 3)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	tango.LaunchTableIVNoise(node, hdd, 3)

	store, err := tango.StageScaled(h, node.Tiers(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tango.NewSession("analytics", store, tango.SessionConfig{
		Policy:       tango.CrossLayer,
		ErrorControl: true,
		Bound:        0.01,
		Priority:     tango.PriorityHigh,
		Steps:        8,
		Window:       5,
		RefitEvery:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(8*60 + 600); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "summary=%+v\n", sess.Summary(2))
	for _, st := range sess.Stats() {
		fmt.Fprintf(&buf, "step=%+v\n", st)
	}
	return buf.Bytes()
}

// TestSameSeedByteMatch is the determinism regression test: two
// independent runs of the same configuration must produce byte-identical
// outputs. This is the contract docs/determinism.md describes and the
// simdeterminism analyzer enforces statically — if it ever fails, a
// wall-clock, global-rand, or map-order dependence has crept in.
func TestSameSeedByteMatch(t *testing.T) {
	a := runSmallScenario(t)
	b := runSmallScenario(t)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("same-seed runs diverge at output byte %d of %d/%d", i, len(a), len(b))
			}
		}
		t.Fatalf("same-seed runs produced %d and %d bytes", len(a), len(b))
	}
}

// runSlidingScenario is runSmallScenario with the opt-in sliding-DFT
// estimator mode enabled and enough steps that the second refit (step
// 10) consumes the incrementally maintained spectrum instead of running
// a fresh forward transform.
func runSlidingScenario(t *testing.T) []byte {
	t.Helper()
	app := tango.XGCApp()
	field := app.Generate(65, 3)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	tango.LaunchTableIVNoise(node, hdd, 3)

	store, err := tango.StageScaled(h, node.Tiers(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tango.NewSession("analytics", store, tango.SessionConfig{
		Policy:       tango.CrossLayer,
		ErrorControl: true,
		Bound:        0.01,
		Priority:     tango.PriorityHigh,
		Steps:        12,
		Window:       5,
		RefitEvery:   5,
		SlidingDFT:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(12*60 + 600); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "summary=%+v\n", sess.Summary(2))
	for _, st := range sess.Stats() {
		fmt.Fprintf(&buf, "step=%+v\n", st)
	}
	return buf.Bytes()
}

// TestSlidingDFTSameSeedByteMatch extends the determinism contract to
// the opt-in sliding-DFT mode: its incremental summation order makes it
// legitimately different from the default batch-FFT output, but two runs
// of the same configuration must still match byte for byte.
func TestSlidingDFTSameSeedByteMatch(t *testing.T) {
	a := runSlidingScenario(t)
	b := runSlidingScenario(t)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("sliding-mode same-seed runs diverge at output byte %d of %d/%d", i, len(a), len(b))
			}
		}
		t.Fatalf("sliding-mode same-seed runs produced %d and %d bytes", len(a), len(b))
	}
}

// runFaultedScenario is runSmallScenario under fire: the same compact
// run with a fault plan covering every fault group (device degradation,
// cgroup faults, workload churn) armed against it. It serializes the
// stats, the full controller/fault trace, and the injector counters.
func runFaultedScenario(t *testing.T) []byte {
	t.Helper()
	app := tango.XGCApp()
	field := app.Generate(65, 3)

	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: 3,
		Bounds: []float64{0.1, 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	noises := tango.LaunchTableIVNoiseControlled(node, hdd, 3)

	store, err := tango.StageScaled(h, node.Tiers(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	rec := tango.NewTraceRecorder(1 << 14)
	sess, err := tango.NewSession("analytics", store, tango.SessionConfig{
		Policy:       tango.CrossLayer,
		ErrorControl: true,
		Bound:        0.01,
		Priority:     tango.PriorityHigh,
		Steps:        8,
		Window:       5,
		RefitEvery:   5,
		Trace:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Launch(node); err != nil {
		t.Fatal(err)
	}
	plan, err := tango.ParseFaultPlan(
		"latency@100:dev=hdd,add=0.05,dur=60; bw-collapse@150:dev=hdd,factor=0.3,dur=90; " +
			"read-err@260:dev=hdd,dur=40; weight-fail@300:cg=analytics,dur=60; " +
			"period@200:name=noise2,period=50; leave@350:name=noise1")
	if err != nil {
		t.Fatal(err)
	}
	in := tango.NewFaultInjector(node, rec, plan)
	in.RegisterNoise(noises)
	if err := in.Arm(); err != nil {
		t.Fatal(err)
	}
	if err := node.Engine().Run(8*60 + 600); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "summary=%+v\n", sess.Summary(2))
	for _, st := range sess.Stats() {
		fmt.Fprintf(&buf, "step=%+v\n", st)
	}
	fmt.Fprintf(&buf, "faults=%d/%d/%d unpaired=%d\n",
		in.Injected(), in.Cleared(), in.Skipped(), len(tango.UnpairedFaults(rec.Events())))
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultedSameSeedByteMatch extends the determinism contract to the
// fault path: injection windows, staging retries/backoff, regime refits,
// and weight re-application all run on the virtual clock, so two runs of
// the same (seed, plan) must agree byte-for-byte — stats, trace, and
// injector counters included.
func TestFaultedSameSeedByteMatch(t *testing.T) {
	a := runFaultedScenario(t)
	b := runFaultedScenario(t)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("same-plan runs diverge at output byte %d of %d/%d", i, len(a), len(b))
			}
		}
		t.Fatalf("same-plan runs produced %d and %d bytes", len(a), len(b))
	}
}

// TestSyntheticFieldsByteMatch pins generator-level determinism: the
// synthetic app fields behind every experiment must be bit-identical
// across calls with the same seed.
func TestSyntheticFieldsByteMatch(t *testing.T) {
	for _, app := range tango.Apps() {
		a := app.Generate(65, 11)
		b := app.Generate(65, 11)
		if a.AbsDiffMax(b) != 0 {
			t.Fatalf("%s: same-seed fields differ", app.Name)
		}
	}
}

// TestResilExperimentByteMatch extends the contract to the resilience
// control plane: policy-keyed retries, budget pacing, breaker
// transitions, and hedged-read races (the hedged arm runs faulted with
// hedging enabled, cancelling loser legs mid-flight) are all driven by
// the virtual clock, so two runs of `-exp resil` at the same seed must
// render identically — including every per-attempt counter the table
// reports.
func TestResilExperimentByteMatch(t *testing.T) {
	run := func() []byte {
		r := harness.Resil(harness.Config{
			GridN: 65, Seed: 7, Steps: 40, SkipWarmup: 30, DatasetMB: 256,
		})
		return []byte(r.String())
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("same-seed resil runs diverge at output byte %d of %d/%d:\n%s", i, len(a), len(b), a)
			}
		}
		t.Fatalf("same-seed resil runs produced %d and %d bytes", len(a), len(b))
	}
}

// TestPrefetchExperimentByteMatch extends the contract to the cache +
// prefetcher subsystem: the background staging flow, cost-benefit
// eviction, and forecast-gated pausing all run on the virtual clock, so
// two runs of `-exp prefetch` at the same seed must render identically.
func TestPrefetchExperimentByteMatch(t *testing.T) {
	run := func() []byte {
		r := harness.Prefetch(harness.Config{
			GridN: 65, Seed: 7, Steps: 40, SkipWarmup: 30, DatasetMB: 256,
		})
		return []byte(r.String())
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("same-seed prefetch runs diverge at output byte %d of %d/%d:\n%s", i, len(a), len(b), a)
			}
		}
		t.Fatalf("same-seed prefetch runs produced %d and %d bytes", len(a), len(b))
	}
}

// TestFleetExperimentByteMatch pins the fleet-scale contract: an entire
// `-exp fleet` sweep — N per-node engines running their epoch windows
// through runpool — must render byte-identically at worker width 1 and
// 4. All cross-node mutation (placement, migration, egress resharing,
// ledger harvesting) happens at sequential barriers in node-index
// order; this test is the proof.
func TestFleetExperimentByteMatch(t *testing.T) {
	run := func(workers int) []byte {
		prev := runpool.Workers()
		runpool.SetWorkers(workers)
		defer runpool.SetWorkers(prev)
		r := harness.Fleet(harness.Config{Seed: 7, FleetScale: 0.02})
		return []byte(r.String())
	}
	a, b := run(1), run(4)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("fleet runs diverge across worker widths at output byte %d of %d/%d:\n%s", i, len(a), len(b), a)
			}
		}
		t.Fatalf("fleet runs produced %d and %d bytes across worker widths", len(a), len(b))
	}
}

// TestTokensExperimentByteMatch pins the token-control contract: the
// whole `-exp tokens` sweep — nine single-node arms (three control
// modes through quiet, mass weight-fail, and chaos plans) plus three
// fleet arms under node-kill — must render byte-identically at runpool
// worker width 1 and 4. Every borrow, repayment, and recall happens
// inside one node's engine-serialized window, so the ledger is exactly
// as reproducible as the weight timeline it funds.
func TestTokensExperimentByteMatch(t *testing.T) {
	run := func(workers int) []byte {
		prev := runpool.Workers()
		runpool.SetWorkers(workers)
		defer runpool.SetWorkers(prev)
		r := harness.Tokens(harness.Config{
			GridN: 65, Seed: 7, Steps: 40, SkipWarmup: 30, DatasetMB: 256,
		})
		return []byte(r.String())
	}
	a, b := run(1), run(4)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("tokens runs diverge across worker widths at output byte %d of %d/%d:\n%s", i, len(a), len(b), a)
			}
		}
		t.Fatalf("tokens runs produced %d and %d bytes across worker widths", len(a), len(b))
	}
}

// TestFleetFaultedByteMatch repeats the width sweep with an explicit
// node-kill plan on the faulted arm: kill/rebalance/revive/settle-back
// all happen at barriers, so the fault path must be exactly as
// reproducible as the quiet one.
func TestFleetFaultedByteMatch(t *testing.T) {
	plan, err := fault.ParsePlan("node-kill@240:node=node0,dur=120; node-kill@240:node=node3,dur=180")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		prev := runpool.Workers()
		runpool.SetWorkers(workers)
		defer runpool.SetWorkers(prev)
		r := harness.Fleet(harness.Config{Seed: 11, FleetScale: 0.05, FaultPlan: plan})
		return []byte(r.String())
	}
	a, b := run(1), run(4)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				t.Fatalf("faulted fleet runs diverge across worker widths at output byte %d of %d/%d:\n%s", i, len(a), len(b), a)
			}
		}
		t.Fatalf("faulted fleet runs produced %d and %d bytes across worker widths", len(a), len(b))
	}
}
