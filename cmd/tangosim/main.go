// Command tangosim runs a single storage-interference scenario: one
// analytics container under a chosen policy against the Table IV
// interference set, printing a per-step trace and the summary.
//
// Example:
//
//	tangosim -policy cross -noise 6 -bound 0.01 -priority 10 -steps 60
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tango"
	"tango/internal/cliutil"
)

func main() {
	var (
		policy   = flag.String("policy", "cross", "adaptation policy: none|storage|app|cross|prefetch")
		noise    = flag.Int("noise", 6, "number of Table IV interfering containers (0-6)")
		appName  = flag.String("app", "XGC", "application: XGC|GenASiS|CFD")
		grid     = flag.Int("grid", 513, "analysis field side length")
		seed     = flag.Int64("seed", 42, "random seed")
		steps    = flag.Int("steps", 60, "analysis steps (60 s period each)")
		bound    = flag.Float64("bound", 0, "prescribed NRMSE bound (0 = no error control)")
		priority = flag.Float64("priority", tango.PriorityHigh, "application priority (1, 5, 10)")
		dataset  = flag.Float64("dataset", 2048, "staged dataset size in MB")
		verbose  = flag.Bool("v", false, "print every step (default: every 5th)")
		traceOut = flag.Bool("trace", false, "dump the controller event trace after the run")
		faults   = flag.String("faults", "", "fault plan spec (docs/faults.md), e.g. 'bw-collapse@900:dev=hdd,factor=0.2,dur=120; leave@2400:name=noise1', or 'auto' for a seed-generated plan")
		prefetch = flag.Bool("prefetch", false, "enable the fast-tier cache + idle-window prefetcher (implied by -policy prefetch)")
		cacheMB  = flag.Int("cache", 0, "fast-tier cache capacity in MB (0 = default 512; implies -prefetch)")
		resilOn  = flag.Bool("resil", false, "route recovery through the resilience control plane (policy-keyed retries, budgets, breakers; docs/resil.md)")
		hedge    = flag.Bool("hedge", false, "enable forecast-driven hedged reads (implies -resil; pairs best with -prefetch)")
		nodes    = flag.Int("nodes", 1, "fleet mode: simulate this many nodes over a shared object store (docs/fleet.md)")
		sessions = flag.Int("sessions", 0, "fleet mode: session count (default 10 per node)")
		objstore = flag.Bool("objstore", false, "fleet mode even with -nodes 1: back the node with the object-store capacity tier")
		control  = flag.String("control", "central", "weight-control mode: central|tokens|hybrid (docs/tokens.md)")
	)
	flag.Parse()

	mode, err := cliutil.ParseControl(*control)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(2)
	}

	if *nodes > 1 || *objstore {
		runFleet(*nodes, *sessions, *seed, mode, *faults, *traceOut, *verbose)
		return
	}

	pol, err := cliutil.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(2)
	}
	var app tango.App
	switch strings.ToLower(*appName) {
	case "xgc":
		app = tango.XGCApp()
	case "genasis":
		app = tango.GenASiSApp()
	case "cfd":
		app = tango.CFDApp()
	default:
		fmt.Fprintf(os.Stderr, "tangosim: unknown app %q\n", *appName)
		os.Exit(2)
	}

	fmt.Printf("generating %s field (%dx%d, seed %d)...\n", app.Name, *grid, *grid, *seed)
	field := app.Generate(*grid, *seed)

	bounds := []float64{1e-1, 1e-2, 1e-3, 1e-4}
	fmt.Println("decomposing (decimation ratio 16, NRMSE ladder 1e-1..1e-4)...")
	h, err := tango.DecomposeTensor(field, tango.RefactorOptions{
		Levels: tango.LevelsForRatio(16, 2, 2),
		Bounds: bounds,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(1)
	}
	for _, rg := range h.Rungs() {
		fmt.Printf("  rung eps=%-8g cursor=%-9d +%d entries (%.1f%% DoF)\n",
			rg.Bound, rg.Cursor, rg.Cardinality, 100*h.DoFFraction(rg.Cursor))
	}

	node := tango.NewNode("node0")
	node.MustAddDevice(tango.SSD("ssd"))
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	noiseHandles := tango.LaunchTableIVNoiseControlled(node, hdd, *noise)

	var plan *tango.FaultPlan
	if *faults == "auto" {
		interferers := make([]string, 0, len(noiseHandles))
		for i := 1; i <= *noise; i++ {
			interferers = append(interferers, fmt.Sprintf("noise%d", i))
		}
		plan, err = tango.GenerateFaultPlan(*seed, tango.FaultGenerateOptions{
			Horizon: float64(*steps) * 60, Device: "hdd",
			Cgroup: app.Name, Interferers: interferers,
		})
	} else if *faults != "" {
		plan, err = tango.ParseFaultPlan(*faults)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(2)
	}

	scale := *dataset * 1024 * 1024 / float64(h.BaseBytes()+h.TotalAugBytes())
	if scale < 1 {
		scale = 1
	}
	store, err := tango.StageScaled(h, node.Tiers(), scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(1)
	}

	// -prefetch (or -cache) upgrades a cross-layer run to the cache
	// variant; with other policies the cache rides along as configured.
	if *cacheMB > 0 {
		*prefetch = true
	}
	cfg := tango.SessionConfig{
		Policy:   pol,
		Priority: *priority,
		Steps:    *steps,
	}
	if *prefetch {
		if cfg.Policy == tango.CrossLayer {
			cfg.Policy = tango.CrossLayerPrefetch
		}
		cc := tango.DefaultCacheConfig()
		if *cacheMB > 0 {
			cc.CapacityMB = *cacheMB
		}
		cfg.Cache = &cc
	}
	var rec *tango.TraceRecorder
	if *traceOut || plan != nil {
		rec = tango.NewTraceRecorder(1 << 16)
		cfg.Trace = rec
	}
	if *hedge {
		*resilOn = true
	}
	var rc *tango.ResilController
	if *resilOn {
		rc = tango.NewResilController(node.Engine(), tango.ResilOptions{
			Trace: rec,
			Hedge: tango.HedgeConfig{Enabled: *hedge},
		})
		cfg.Resil = rc
	}
	if *bound > 0 {
		cfg.ErrorControl = true
		cfg.Bound = *bound
	}
	// -control tokens|hybrid swaps the weight path onto per-session token
	// buckets; central keeps the direct cgroup writes (the single-session
	// run needs no coordinator).
	var tokens *tango.TokenController
	if mode != tango.ModeCentral {
		var topts tango.TokenOptions
		if mode == tango.ModeHybrid {
			topts.EpochSec = 300
		}
		tokens = tango.NewTokenController(node.Engine().Now, topts)
		cfg.Tokens = tokens
	}
	sess, err := tango.NewSession(app.Name, store, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(1)
	}
	if err := sess.Launch(node); err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(1)
	}
	var injector *tango.FaultInjector
	if plan != nil {
		injector = tango.NewFaultInjector(node, rec, plan)
		injector.RegisterNoise(noiseHandles)
		if err := injector.Arm(); err != nil {
			fmt.Fprintln(os.Stderr, "tangosim:", err)
			os.Exit(2)
		}
		fmt.Printf("fault plan armed: %s\n", plan)
	}
	fmt.Printf("running %d steps under %s with %d interferers...\n\n", *steps, pol, *noise)
	if err := node.Engine().Run(float64(*steps)*60 + 3600); err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(1)
	}

	fmt.Printf("%5s %9s %10s %10s %9s %7s %8s\n",
		"step", "t(s)", "io(s)", "MB", "estMB/s", "degree", "weightN")
	for _, st := range sess.Stats() {
		if !*verbose && st.Step%5 != 0 {
			continue
		}
		fmt.Printf("%5d %9.0f %10.3f %10.1f %9.1f %7.2f %8d\n",
			st.Step, st.Start, st.IOTime, st.Bytes/(1024*1024),
			st.Predicted/(1024*1024), st.Degree, len(st.Buckets))
	}
	sum := sess.Summary(30)
	fmt.Printf("\nsummary (steps 30+): mean I/O %.3fs  std %.3fs  min %.3fs  max %.3fs  mean %.1f MB/step\n",
		sum.MeanIO, sum.StdIO, sum.MinIO, sum.MaxIO, sum.MeanBytes/(1024*1024))
	if c := sess.Cache(); c != nil {
		cs := c.Stats()
		fmt.Printf("cache: %d hits / %d misses, %.1f MB served fast, %.1f MB staged, %.1f MB evicted, %.0f/%.0f MB used\n",
			cs.Hits, cs.Misses, cs.HitBytes/(1024*1024), cs.StagedBytes/(1024*1024),
			cs.EvictedBytes/(1024*1024), c.Used()/(1024*1024), c.Capacity()/(1024*1024))
		ps := sess.Prefetcher().Stats()
		fmt.Printf("prefetcher: %d ticks, %d staging runs, %d paused, %d busy, %d aborted\n",
			ps.Ticks, ps.Runs, ps.Paused, ps.Busy, ps.Aborted)
	}
	if rc != nil {
		tot := rc.Totals()
		fmt.Printf("resil: %d ops, %d attempts (amp %.3f), %d retries, %d timeouts, %d degraded, %d breaker opens, %d hedges (%d fast / %d slow wins), %.1f MB wasted\n",
			tot.Ops, tot.Attempts, tot.Amplification(), tot.Retries, tot.Timeouts,
			tot.Degraded, tot.BreakerOpens, tot.Hedges, tot.HedgeFastWins,
			tot.HedgeSlowWins, tot.WastedBytes/(1024*1024))
	}
	if tokens != nil {
		ts := tokens.Stats()
		fmt.Printf("tokens (%s): %d weight writes, %d borrows, %d repays, %d recalls\n",
			mode, ts.Writes, ts.Borrows, ts.Repays, ts.Recalls)
	}
	if injector != nil {
		retries := 0
		for _, st := range sess.Stats() {
			retries += st.Retries
		}
		fmt.Printf("faults: %d injected, %d cleared, %d skipped; %d read retries; %d unpaired\n",
			injector.Injected(), injector.Cleared(), injector.Skipped(),
			retries, len(tango.UnpairedFaults(rec.Events())))
	}
	if *traceOut {
		fmt.Printf("\ncontroller trace (%d events):\n", rec.Len())
		if _, err := rec.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tangosim:", err)
		}
	}
}

// runFleet is tangosim's cluster mode (-nodes / -objstore): an N-node
// fleet of single-node stacks over a shared object store, with optional
// node-kill fault plans, printing per-epoch aggregate throughput and the
// cluster totals line.
func runFleet(nodes, sessions int, seed int64, mode tango.ControlMode, faults string, traceOut, verbose bool) {
	var plan *tango.FaultPlan
	if faults != "" {
		var err error
		plan, err = tango.ParseFaultPlan(faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tangosim:", err)
			os.Exit(2)
		}
	}
	rec := tango.NewTraceRecorder(16384)
	cfg := tango.FleetConfig{
		Nodes:    nodes,
		Sessions: sessions,
		Seed:     seed,
		Plan:     plan,
		Trace:    rec,
		Control:  mode,
	}
	c, err := tango.NewFleet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(2)
	}
	if sessions == 0 {
		sessions = nodes * 10
	}
	store := tango.DefaultObjstore(nodes)
	fmt.Printf("fleet: %d nodes, %d sessions, seed %d, %s control\n", nodes, sessions, seed, mode)
	fmt.Printf("objstore: %.0f MB/s per-node frontend, %.0f MB/s shared egress, %.0f ms/request\n",
		store.NodeBandwidth/(1<<20), store.TotalEgress/(1<<20), 1000*store.RequestLatency)
	if plan != nil {
		fmt.Printf("fault plan: %s\n", plan)
	}
	if verbose {
		fmt.Print(c.Describe(16))
	}
	rep, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangosim:", err)
		os.Exit(1)
	}
	for e, mbps := range rep.EpochMBps {
		warm := ""
		if e < 2 {
			warm = "  (warm-up)"
		}
		fmt.Printf("epoch %2d: agg %8.1f MB/s%s\n", e, mbps, warm)
	}
	if traceOut {
		fmt.Println("--- cluster trace ---")
		if _, err := rec.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tangosim:", err)
		}
	}
	fmt.Println(rep.TotalsLine())
	if mode != tango.ModeCentral {
		fmt.Printf("tokens: %d weight writes, %d borrows, %d repays, %d recalls\n",
			rep.Tokens.Writes, rep.Tokens.Borrows, rep.Tokens.Repays, rep.Tokens.Recalls)
	}
}
