// Command tangolint runs the project's static-analysis suite (package
// internal/lint) over the module source and reports findings as
//
//	file:line: [analyzer] message
//
// exiting non-zero when anything is found. See docs/determinism.md for
// the rules and the //lint:ignore escape hatch.
//
// With -json, findings are emitted instead as one JSON array of
//
//	{"file": ..., "line": ..., "analyzer": ..., "message": ..., "witness": [...]}
//
// objects (witness is the call-chain evidence the interprocedural
// analyzers attach), which is what CI archives as its lint artifact.
//
// Usage:
//
//	tangolint [-analyzers a,b] [-json] [-list] [-v] [./... | dir ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tango/internal/lint"
)

// jsonFinding is the -json wire format, one object per finding. File is
// module-root-relative with forward slashes, so artifacts diff cleanly
// across machines.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Witness  []string `json:"witness,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("tangolint", flag.ExitOnError)
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	list := fs.Bool("list", false, "list analyzers and exit")
	verbose := fs.Bool("v", false, "print a summary even when clean")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tangolint [-analyzers a,b] [-json] [-list] [-v] [./... | dir ...]\n\nanalyzers:\n")
		for _, name := range lint.AnalyzerNames() {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", name, lint.AnalyzerDoc(name))
		}
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *list {
		for _, name := range lint.AnalyzerNames() {
			fmt.Printf("%-16s %s\n", name, lint.AnalyzerDoc(name))
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangolint:", err)
		return 2
	}

	opts := lint.Options{Root: root}
	if *analyzersFlag != "" {
		opts.Analyzers = strings.Split(*analyzersFlag, ",")
	}
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "." {
			opts.Dirs = nil // whole module
			break
		}
		dir := strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tangolint:", err)
			return 2
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(os.Stderr, "tangolint: %s is outside module root %s\n", arg, root)
			return 2
		}
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			fmt.Fprintf(os.Stderr, "tangolint: no such directory: %s\n", arg)
			return 2
		}
		opts.Dirs = append(opts.Dirs, rel)
	}

	findings, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangolint:", err)
		return 2
	}
	relFile := func(name string) string {
		rel, err := filepath.Rel(root, name)
		if err != nil {
			return name
		}
		return filepath.ToSlash(rel)
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     relFile(f.Pos.Filename),
				Line:     f.Pos.Line,
				Analyzer: f.Analyzer,
				Message:  f.Message,
				Witness:  f.Witness,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "tangolint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", relFile(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tangolint: %d finding(s)\n", len(findings))
		return 1
	}
	if *verbose {
		fmt.Println("tangolint: ok")
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
