// Command tangotrace replays recorded I/O traces against a simulated
// device and reports contention statistics — for studying interference
// workloads outside a full Tango session, or exporting the Table IV set
// for external tools.
//
//	tangotrace export -noise 6 -count 20 -out tableiv.trace
//	tangotrace replay -in tableiv.trace -probe 60
//	tangotrace replay -in a.trace -in2 b.trace
//
// Trace format: one op per line, "time_seconds,bytes[,r|w]"; lines
// starting with '#' are comments.
package main

import (
	"flag"
	"fmt"
	"os"

	"tango"
	"tango/internal/device"
	"tango/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "export":
		err = export(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangotrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tangotrace {export|replay} [flags]")
	os.Exit(2)
}

// export writes the first -count checkpoints of the Table IV interferers
// (jitter-free, for reproducible external replay) as one merged trace.
func export(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	nNoise := fs.Int("noise", 6, "number of Table IV interferers (1-6)")
	count := fs.Int("count", 20, "checkpoints per interferer")
	out := fs.String("out", "", "output trace file")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("export needs -out")
	}
	set := workload.PaperNoiseSet()
	if *nNoise < 1 || *nNoise > len(set) {
		return fmt.Errorf("-noise must be 1..%d", len(set))
	}
	var ops []workload.TraceOp
	for _, n := range set[:*nNoise] {
		ops = append(ops, workload.SynthesizeTrace(n, *count)...)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := workload.WriteTrace(f, ops); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("exported %d ops from %d interferers to %s\n", len(ops), *nNoise, *out)
	return nil
}

// replay runs one or two traces against a simulated HDD, optionally with
// a periodic probe reader measuring the bandwidth an analytics container
// would perceive.
func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	in2 := fs.String("in2", "", "optional second trace (sharing the device)")
	probe := fs.Float64("probe", 0, "probe-read period in seconds (0 = no probe)")
	probeMB := fs.Float64("probe-mb", 64, "probe read size in MB")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("replay needs -in")
	}
	load := func(path string) ([]workload.TraceOp, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ParseTrace(f)
	}
	ops, err := load(*in)
	if err != nil {
		return err
	}

	node := tango.NewNode("replay")
	hdd := node.MustAddDevice(tango.HDD("hdd"))
	workload.ReplayTrace(node, hdd, "trace1", ops)
	horizon := ops[len(ops)-1].T + 600

	if *in2 != "" {
		ops2, err := load(*in2)
		if err != nil {
			return err
		}
		workload.ReplayTrace(node, hdd, "trace2", ops2)
		if h := ops2[len(ops2)-1].T + 600; h > horizon {
			horizon = h
		}
	}

	var samples []float64
	if *probe > 0 {
		steps := int(horizon / *probe)
		workload.PeriodicReader(node, hdd, "probe", *probe, steps,
			func(int) float64 { return *probeMB * 1024 * 1024 },
			func(step int, start, ioTime, bytes float64) {
				samples = append(samples, bytes/ioTime)
			})
	}
	if err := node.Engine().Run(horizon); err != nil {
		return err
	}

	fmt.Printf("replayed %s on %s (%.0f MB/s peak)\n", *in, hdd.Name(), hdd.Params().PeakBandwidth/device.MB)
	fmt.Printf("  device busy: %.1fs of %.1fs (%.1f%%)\n",
		hdd.BusyTime(), node.Engine().Now(), 100*hdd.BusyTime()/node.Engine().Now())
	fmt.Printf("  bytes served: %.1f GB\n", hdd.TotalBytes()/(1024*1024*1024))
	if len(samples) > 0 {
		var min, max, sum float64 = samples[0], samples[0], 0
		for _, s := range samples {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
			sum += s
		}
		fmt.Printf("  probe bandwidth over %d reads: mean %.1f MB/s, min %.1f, max %.1f\n",
			len(samples), sum/float64(len(samples))/device.MB, min/device.MB, max/device.MB)
	}
	return nil
}
