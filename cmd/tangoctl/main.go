// Command tangoctl performs offline error-bounded refactorization of raw
// float64 grid files (little-endian, row-major):
//
//	tangoctl decompose -in field.raw -dims 512x512 -levels 3 \
//	        -bounds 0.1,0.01,0.001 -out field.tng
//	tangoctl inspect -in field.tng
//	tangoctl recompose -in field.tng -bound 0.01 -out rec.raw
//	tangoctl recompose -in field.tng -fraction 0.5 -out rec.raw
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"tango"
	"tango/internal/cliutil"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "decompose":
		err = decompose(os.Args[2:])
	case "inspect":
		err = inspect(os.Args[2:])
	case "recompose":
		err = recompose(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tangoctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tangoctl {decompose|inspect|recompose} [flags]")
	os.Exit(2)
}

func decompose(args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	in := fs.String("in", "", "input raw float64 file")
	dimsStr := fs.String("dims", "", "grid dims, e.g. 512x512")
	levels := fs.Int("levels", 3, "hierarchy levels")
	decim := fs.Int("d", 2, "per-level decimation factor")
	metric := fs.String("metric", "nrmse", "error metric: nrmse|psnr")
	boundsStr := fs.String("bounds", "", "error bounds, loose to tight, comma-separated")
	out := fs.String("out", "", "output .tng file")
	fs.Parse(args)
	if *in == "" || *dimsStr == "" || *out == "" {
		return fmt.Errorf("decompose needs -in, -dims, -out")
	}
	dims, err := cliutil.ParseDims(*dimsStr)
	if err != nil {
		return err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	data, err := cliutil.ReadRawFloat64s(*in, n)
	if err != nil {
		return err
	}
	bounds, err := cliutil.ParseBounds(*boundsStr)
	if err != nil {
		return err
	}
	m := tango.NRMSE
	if strings.EqualFold(*metric, "psnr") {
		m = tango.PSNR
	}
	h, err := tango.Decompose(data, dims, tango.RefactorOptions{
		Levels: *levels, Decimation: *decim, Metric: m, Bounds: bounds,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := h.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("decomposed %v into %d levels, %d augmentation entries, base accuracy %.4g\n",
		dims, h.Levels(), h.TotalEntries(), h.BaseAccuracy())
	return nil
}

func loadHierarchy(path string) (*tango.Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tango.DecodeHierarchy(bufio.NewReader(f))
}

func inspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input .tng file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect needs -in")
	}
	h, err := loadHierarchy(*in)
	if err != nil {
		return err
	}
	o := h.Opts()
	fmt.Printf("dims:        %v\n", h.Dims())
	fmt.Printf("levels:      %d (decimation %d)\n", h.Levels(), o.Decimation)
	fmt.Printf("metric:      %s\n", o.Metric)
	fmt.Printf("base:        %d points (%d bytes), accuracy %.4g\n",
		h.Base().Len(), h.BaseBytes(), h.BaseAccuracy())
	fmt.Printf("augmentation: %d entries (%d bytes)\n", h.TotalEntries(), h.TotalAugBytes())
	for _, r := range h.Rungs() {
		fmt.Printf("  rung eps=%-10g achieved=%-12.4g cursor=%-9d +%-8d entries at level %d (%.1f%% DoF)\n",
			r.Bound, r.Achieved, r.Cursor, r.Cardinality, r.Level, 100*h.DoFFraction(r.Cursor))
	}
	return nil
}

func recompose(args []string) error {
	fs := flag.NewFlagSet("recompose", flag.ExitOnError)
	in := fs.String("in", "", "input .tng file")
	bound := fs.Float64("bound", math.NaN(), "recompose to this error bound")
	fraction := fs.Float64("fraction", math.NaN(), "or: fraction of augmentation stream [0,1]")
	out := fs.String("out", "", "output raw float64 file")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("recompose needs -in and -out")
	}
	h, err := loadHierarchy(*in)
	if err != nil {
		return err
	}
	cursor := h.TotalEntries()
	switch {
	case !math.IsNaN(*bound):
		cursor, err = h.CursorForBound(*bound)
		if err != nil {
			return err
		}
	case !math.IsNaN(*fraction):
		cursor = h.CursorForFraction(*fraction)
	}
	rec := h.Recompose(cursor)
	if err := cliutil.WriteRawFloat64s(*out, rec.Data()); err != nil {
		return err
	}
	fmt.Printf("recomposed %v at cursor %d/%d (%.1f%% DoF) -> %s\n",
		h.Dims(), cursor, h.TotalEntries(), 100*h.DoFFraction(cursor), *out)
	return nil
}
