// Command tangobench regenerates every table and figure of the paper's
// evaluation (plus the design ablations) and prints them as text tables.
//
// Usage:
//
//	tangobench                 # run the full suite
//	tangobench -exp fig8       # run one experiment
//	tangobench -list           # list experiment IDs
//	tangobench -grid 1025      # paper-scale fields (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tango/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID to run (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		gridN   = flag.Int("grid", 0, "analysis field side length (default 513)")
		seed    = flag.Int64("seed", 0, "random seed (default 42)")
		steps   = flag.Int("steps", 0, "analysis steps per session (default 90)")
		skip    = flag.Int("skip", 0, "warm-up steps excluded from summaries (default 30)")
		dataset = flag.Float64("dataset", 0, "staged dataset size in MB per app (default 2048)")
		format  = flag.String("format", "table", "output format: table|csv|json")
		jsonOut = flag.Bool("json", false, "emit all results of the run as one JSON document")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.Config{GridN: *gridN, Seed: *seed, Steps: *steps, SkipWarmup: *skip, DatasetMB: *dataset}

	var collected []*harness.Result
	run := func(e harness.Experiment) {
		start := time.Now()
		res := e.Run(cfg)
		if *jsonOut {
			collected = append(collected, res)
			return
		}
		if err := res.Format(os.Stdout, *format); err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
		if *format == "table" {
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	if *exp != "" {
		e, err := harness.LookupErr(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
		run(e)
	} else {
		for _, e := range harness.Experiments() {
			run(e)
		}
	}
	if *jsonOut {
		if err := harness.WriteSuiteJSON(os.Stdout, collected); err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
	}
}
