// Command tangobench regenerates every table and figure of the paper's
// evaluation (plus the design ablations) and prints them as text tables.
//
// Usage:
//
//	tangobench                 # run the full suite
//	tangobench -exp fig8       # run one experiment
//	tangobench -exp fig8,fig9  # run a subset, in the order given
//	tangobench -list           # list experiment IDs
//	tangobench -grid 1025      # paper-scale fields (slower)
//	tangobench -parallel 4     # scenario-runner workers (default GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"tango/internal/harness"
	"tango/internal/runpool"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment IDs to run (default: all)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		gridN    = flag.Int("grid", 0, "analysis field side length (default 513)")
		seed     = flag.Int64("seed", 0, "random seed (default 42)")
		steps    = flag.Int("steps", 0, "analysis steps per session (default 90)")
		skip     = flag.Int("skip", 0, "warm-up steps excluded from summaries (default 30)")
		dataset  = flag.Float64("dataset", 0, "staged dataset size in MB per app (default 2048)")
		fscale   = flag.Float64("fleetscale", 0, "fleet experiment sweep scale (default 1)")
		format   = flag.String("format", "table", "output format: table|csv|json")
		jsonOut  = flag.Bool("json", false, "emit all results of the run as one JSON document")
		parallel = flag.Int("parallel", 0, "scenario-runner workers; 1 = sequential (default GOMAXPROCS)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	runpool.SetWorkers(*parallel)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := harness.Config{GridN: *gridN, Seed: *seed, Steps: *steps, SkipWarmup: *skip,
		DatasetMB: *dataset, FleetScale: *fscale}

	var collected []*harness.Result
	run := func(e harness.Experiment) {
		start := time.Now()
		res := e.Run(cfg)
		if *jsonOut {
			collected = append(collected, res)
			return
		}
		if err := res.Format(os.Stdout, *format); err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
		if *format == "table" {
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	if *exp != "" {
		// Resolve the whole list before running anything so a typo in the
		// last ID doesn't waste the first experiment's runtime.
		var todo []harness.Experiment
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			e, err := harness.LookupErr(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tangobench:", err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
		for _, e := range todo {
			run(e)
		}
	} else {
		for _, e := range harness.Experiments() {
			run(e)
		}
	}
	if *jsonOut {
		if err := harness.WriteSuiteJSON(os.Stdout, collected); err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "tangobench:", err)
			os.Exit(2)
		}
	}
}
