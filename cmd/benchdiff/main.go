// Command benchdiff compares two tangobench -json suite documents (a
// baseline and a candidate, e.g. two CI artifacts) and exits non-zero if
// any headline metric regressed by more than the threshold.
//
//	benchdiff [-threshold 10] [-all] old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"

	"tango/internal/benchdiff"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 10, "regression threshold in percent")
		all       = flag.Bool("all", false, "print every compared metric, not just regressions")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-all] old.json new.json")
		os.Exit(2)
	}
	read := func(path string) *benchdiff.Suite {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		s, err := benchdiff.ReadSuite(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(2)
		}
		return s
	}
	rep := benchdiff.Compare(read(flag.Arg(0)), read(flag.Arg(1)), *threshold)
	for _, n := range rep.Notes {
		fmt.Println("note:", n)
	}
	shown := 0
	for _, d := range rep.Deltas {
		if *all || d.Regression {
			fmt.Println(d)
			shown++
		}
	}
	reg := rep.Regressions()
	fmt.Printf("benchdiff: %d metrics compared, %d regressions (threshold %.0f%%)\n",
		len(rep.Deltas), len(reg), *threshold)
	if len(reg) > 0 {
		os.Exit(1)
	}
}
