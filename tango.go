// Package tango is a reproduction of "Tango: A Cross-layer Approach to
// Managing I/O Interference over Local Ephemeral Storage" (SC 2024).
//
// Tango coordinates two layers to keep data analytics fast on a node
// whose local ephemeral storage (an SSD performance tier plus an HDD
// capacity tier) is shared with other containers:
//
//   - Application layer: analysis data is refactored into a base
//     representation plus magnitude-ordered augmentations bucketed by
//     NRMSE/PSNR error bound (Decompose). At each analysis step a
//     DFT-based estimator predicts the available bandwidth and the
//     controller retrieves only as much augmentation as that supports,
//     never less than the prescribed bound.
//   - Storage layer: the container's blkio weight is adjusted per bucket
//     by a weight function of the bucket's cardinality, accuracy level,
//     and application priority.
//
// The storage substrate (devices, cgroups, containers, interference) is a
// deterministic discrete-event simulation, so experiments that take an
// hour of wall-clock in the paper replay in milliseconds. The top-level
// API mirrors the workflow:
//
//	h, _ := tango.Decompose(data, dims, tango.RefactorOptions{
//		Levels: 3, Bounds: []float64{0.1, 0.01},
//	})
//	node := tango.NewNode("node0")
//	ssd := node.MustAddDevice(tango.SSD("ssd"))
//	hdd := node.MustAddDevice(tango.HDD("hdd"))
//	tango.LaunchTableIVNoise(node, hdd, 6)
//	store, _ := tango.Stage(h, node.Tiers())
//	sess, _ := tango.NewSession("analytics", store, tango.SessionConfig{
//		Policy: tango.CrossLayer, ErrorControl: true, Bound: 0.01,
//		Priority: tango.PriorityHigh, Steps: 60,
//	})
//	sess.Launch(node)
//	node.Engine().Run(3600)
//	fmt.Println(sess.Summary(30).MeanIO)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package tango

import (
	"io"

	"tango/internal/analytics"
	"tango/internal/blkio"
	"tango/internal/cache"
	"tango/internal/container"
	"tango/internal/coordinator"
	"tango/internal/core"
	"tango/internal/device"
	"tango/internal/errmetric"
	"tango/internal/fault"
	"tango/internal/fleet"
	"tango/internal/objstore"
	"tango/internal/refactor"
	"tango/internal/resil"
	"tango/internal/sim"
	"tango/internal/staging"
	"tango/internal/tensor"
	"tango/internal/tokenctl"
	"tango/internal/trace"
	"tango/internal/weightfn"
	"tango/internal/workload"
)

// ---- Error metrics -------------------------------------------------------

// Metric selects the error metric for error-bounded refactorization.
type Metric = errmetric.Kind

// Supported metrics (paper §III-B1).
const (
	NRMSE = errmetric.NRMSE
	PSNR  = errmetric.PSNR
)

// ---- Refactorization ------------------------------------------------------

// RefactorOptions configures Decompose. See refactor.Options.
type RefactorOptions = refactor.Options

// Hierarchy is a refactored dataset: base representation, augmentation
// streams, and the error-bound ladder.
type Hierarchy = refactor.Hierarchy

// Rung is one step of the error-bound ladder.
type Rung = refactor.Rung

// Tensor is a dense N-dimensional float64 grid.
type Tensor = tensor.Tensor

// NewTensor allocates a zero tensor.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// TensorFromData wraps data (not copied) with the given dims.
func TensorFromData(data []float64, dims ...int) *Tensor {
	return tensor.FromData(data, dims...)
}

// Decompose refactors a row-major grid into an error-bounded hierarchy
// (paper §III-B). The decomposition is lossless at full augmentation.
func Decompose(data []float64, dims []int, o RefactorOptions) (*Hierarchy, error) {
	return refactor.Decompose(tensor.FromData(data, dims...), o)
}

// DecomposeTensor is Decompose over an existing tensor.
func DecomposeTensor(t *Tensor, o RefactorOptions) (*Hierarchy, error) {
	return refactor.Decompose(t, o)
}

// DecodeHierarchy reads a hierarchy serialized with Hierarchy.Encode.
func DecodeHierarchy(r io.Reader) (*Hierarchy, error) { return refactor.Decode(r) }

// Var is one named variable of a multi-variable dataset.
type Var = refactor.Var

// Bundle refactors several variables under one error-bound ladder.
type Bundle = refactor.Bundle

// DecomposeBundle refactors each variable with the same options, giving a
// uniform per-bound guarantee across variables.
func DecomposeBundle(vars []Var, o RefactorOptions) (*Bundle, error) {
	return refactor.DecomposeBundle(vars, o)
}

// DecodeBundle reads a bundle serialized with Bundle.Encode.
func DecodeBundle(r io.Reader) (*Bundle, error) { return refactor.DecodeBundle(r) }

// LevelsForRatio converts a target decimation ratio (point-count
// reduction of the base representation) into a level count.
func LevelsForRatio(ratio float64, rank, d int) int {
	return refactor.LevelsForRatio(ratio, rank, d)
}

// ---- Storage substrate -----------------------------------------------------

// Node is a simulated compute node with local ephemeral storage tiers.
type Node = container.Node

// Proc is a simulated process: custom container bodies receive one and
// use its Sleep/Suspend methods to advance virtual time.
type Proc = sim.Proc

// Engine is the deterministic discrete-event scheduler driving a node.
type Engine = sim.Engine

// Container is an application container bound to a blkio cgroup.
type Container = container.Container

// Device is a simulated shared block device.
type Device = device.Device

// DeviceParams describes a device's performance envelope.
type DeviceParams = device.Params

// Cgroup is a blkio control group.
type Cgroup = blkio.Cgroup

// NewNode creates a node with its own deterministic simulation engine.
func NewNode(name string) *Node { return container.NewNode(name) }

// Device presets calibrated to the paper's testbed.
var (
	HDD  = device.HDD
	SSD  = device.SSD
	NVMe = device.NVMe
)

// MB is one mebibyte in bytes.
const MB = device.MB

// Noise is one periodic interfering container.
type Noise = workload.Noise

// TableIVNoise returns the paper's six interfering containers.
func TableIVNoise() []Noise { return workload.PaperNoiseSet() }

// LaunchTableIVNoise starts the first n Table IV interferers on node
// writing to dev, and returns their containers.
func LaunchTableIVNoise(node *Node, dev *Device, n int) []*Container {
	set := workload.PaperNoiseSet()
	if n > len(set) {
		n = len(set)
	}
	return workload.LaunchNoiseSet(node, dev, set[:n])
}

// LaunchNoise starts one custom interferer.
func LaunchNoise(node *Node, dev *Device, n Noise) *Container {
	return workload.LaunchNoise(node, dev, n)
}

// NoiseHandle controls a running interferer (stop, change period) — the
// lever the fault injector's churn events act on.
type NoiseHandle = workload.Handle

// LaunchTableIVNoiseControlled starts the first n Table IV interferers
// and returns their control handles by name, for use with
// FaultInjector.RegisterNoise.
func LaunchTableIVNoiseControlled(node *Node, dev *Device, n int) map[string]*NoiseHandle {
	set := workload.PaperNoiseSet()
	if n > len(set) {
		n = len(set)
	}
	return workload.LaunchNoiseSetControlled(node, dev, set[:n])
}

// ---- Fault injection --------------------------------------------------------

// FaultPlan is a virtual-time schedule of injectable faults: device
// degradations, cgroup faults, and workload churn (see internal/fault
// and docs/faults.md).
type FaultPlan = fault.Plan

// FaultEvent is one scheduled fault.
type FaultEvent = fault.Event

// FaultInjector arms a FaultPlan against a node.
type FaultInjector = fault.Injector

// ParseFaultPlan parses the textual plan spec used by `tangosim -faults`
// (grammar in docs/faults.md), e.g.
// "bw-collapse@900:dev=hdd,factor=0.2,dur=120; leave@2400:name=noise1".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// FaultGenerateOptions parameterizes GenerateFaultPlan.
type FaultGenerateOptions = fault.GenerateOptions

// GenerateFaultPlan draws a seed-deterministic random plan.
func GenerateFaultPlan(seed int64, opts FaultGenerateOptions) (*FaultPlan, error) {
	return fault.Generate(seed, opts)
}

// NewFaultInjector binds a plan to a node, recording injections and
// clearances into rec (which may be nil).
func NewFaultInjector(node *Node, rec *TraceRecorder, plan *FaultPlan) *FaultInjector {
	return fault.NewInjector(node, rec, plan)
}

// UnpairedFaults returns injected faults with no recovery action (a
// recover or refit trace event) recorded at or after the injection.
func UnpairedFaults(events []TraceEvent) []TraceEvent { return fault.Unpaired(events) }

// ---- Staging ---------------------------------------------------------------

// Store is a hierarchy staged across storage tiers.
type Store = staging.Store

// Stage places h across tiers (fastest first) per the paper's Fig 3
// hierarchical placement, reserving capacity.
func Stage(h *Hierarchy, tiers []*Device) (*Store, error) { return staging.Stage(h, tiers) }

// StageScaled is Stage with a payload scale factor (bytes per point
// beyond one float64); see staging.StageScaled.
func StageScaled(h *Hierarchy, tiers []*Device, scale float64) (*Store, error) {
	return staging.StageScaled(h, tiers, scale)
}

// ---- Cross-layer controller --------------------------------------------------

// Policy selects which layers adapt.
type Policy = core.Policy

// The four policies of the paper's evaluation, plus the beyond-paper
// cross-layer variant with the predictive fast-tier cache.
const (
	NoAdapt            = core.NoAdapt
	StorageOnly        = core.StorageOnly
	AppOnly            = core.AppOnly
	CrossLayer         = core.CrossLayer
	CrossLayerPrefetch = core.CrossLayerPrefetch
)

// CacheConfig parameterizes the fast-tier augmentation cache and its
// idle-window prefetcher; pass one via SessionConfig.Cache (see
// internal/cache and docs/cache.md).
type CacheConfig = cache.Config

// Cache is the fast-tier augmentation cache of a launched session.
type Cache = cache.Cache

// DefaultCacheConfig returns the cache defaults spelled out.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// SessionConfig parameterizes an analysis session (zero values take the
// paper's §IV-A defaults).
type SessionConfig = core.Config

// Session runs one data-analytics container under a policy.
type Session = core.Session

// StepStats records one analysis step.
type StepStats = core.StepStats

// Summary aggregates step records (mean/std I/O time, etc).
type Summary = core.Summary

// Application priorities (§IV-A).
const (
	PriorityLow    = weightfn.PriorityLow
	PriorityMedium = weightfn.PriorityMedium
	PriorityHigh   = weightfn.PriorityHigh
)

// NewSession validates cfg against the staged hierarchy and calibrates
// the weight function.
func NewSession(name string, store *Store, cfg SessionConfig) (*Session, error) {
	return core.NewSession(name, store, cfg)
}

// ---- Resilience control plane ------------------------------------------------

// ResilController is the resilience control plane: policy-keyed retries,
// retry budgets, circuit breakers, and forecast-driven hedged reads.
// Pass one via SessionConfig.Resil to route every I/O-issuing layer of
// the session through it (see internal/resil and docs/resil.md).
type ResilController = resil.Controller

// ResilOptions configures a ResilController.
type ResilOptions = resil.Options

// HedgeConfig controls forecast-driven hedged reads.
type HedgeConfig = resil.HedgeConfig

// ResilPolicy is the declarative resilience contract for one policy key.
type ResilPolicy = resil.Policy

// NewResilController builds a controller on the node's engine and
// registers the default policy catalog (resil.Catalog).
func NewResilController(eng *Engine, opts ResilOptions) *ResilController {
	return resil.New(eng, opts)
}

// ---- Coordination -------------------------------------------------------------

// Allocator arbitrates blkio weights across concurrent Tango sessions on
// one node, preserving priority ratios; pass it via
// SessionConfig.Allocator.
type Allocator = coordinator.Allocator

// NewAllocator creates an empty weight allocator.
func NewAllocator() *Allocator { return coordinator.New() }

// TokenController is the decentralized token-bucket weight controller
// (internal/tokenctl): per-session buckets sized from the weight
// function's output, refilled on the sim clock, with bounded borrowing
// from idle peers. Pass one via SessionConfig.Tokens as the O(1)
// alternative to the central Allocator; see docs/tokens.md.
type TokenController = tokenctl.Controller

// TokenOptions tunes the bucket and borrow-ledger geometry; the zero
// value selects the defaults documented on each field.
type TokenOptions = tokenctl.Options

// TokenBucket is one session's bucket handle, returned by Attach.
type TokenBucket = tokenctl.Bucket

// ControlMode selects the weight-control mode: ModeCentral (coordinator
// rescale), ModeTokens (decentralized buckets), or ModeHybrid (tokens
// with a periodic coordinator-style resync). Fleet nodes take one via
// FleetConfig.Control.
type ControlMode = tokenctl.Mode

// The weight-control modes.
const (
	ModeCentral = tokenctl.ModeCentral
	ModeTokens  = tokenctl.ModeTokens
	ModeHybrid  = tokenctl.ModeHybrid
)

// NewTokenController creates a token controller reading the sim clock
// through now (typically node.Engine().Now).
func NewTokenController(now func() float64, opts TokenOptions) *TokenController {
	return tokenctl.New(now, opts)
}

// ---- Tracing ----------------------------------------------------------------

// TraceRecorder is a bounded ring buffer of controller events; pass one
// via SessionConfig.Trace to observe weight adjustments, bucket
// retrievals, and estimator refits.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded controller event.
type TraceEvent = trace.Event

// NewTraceRecorder creates a recorder keeping the most recent max events
// (max <= 0 defaults to 4096).
func NewTraceRecorder(max int) *TraceRecorder { return trace.New(max) }

// ---- Applications -----------------------------------------------------------

// App bundles a synthetic data generator with its analysis outcome-error
// measure (XGC blob detection, GenASiS rendering, CFD pressure).
type App = analytics.App

// The paper's three applications.
var (
	XGCApp     = analytics.XGCApp
	GenASiSApp = analytics.GenASiSApp
	CFDApp     = analytics.CFDApp
	Apps       = analytics.Apps
)

// ---- Fleet ------------------------------------------------------------------

// FleetConfig sizes one multi-node cluster run over a shared object
// store (see internal/fleet and docs/fleet.md).
type FleetConfig = fleet.Config

// FleetReport is the outcome of one cluster run.
type FleetReport = fleet.Report

// Fleet is an N-node cluster of full single-node Tango stacks over a
// shared remote object-store capacity tier.
type Fleet = fleet.Cluster

// ObjstoreParams describes the shared object store backing a fleet.
type ObjstoreParams = objstore.Params

// DefaultObjstore returns object-store parameters sized for n nodes.
func DefaultObjstore(n int) ObjstoreParams { return objstore.Default(n) }

// NewFleet builds a cluster: the object store, the per-node stacks, and
// the seed-deterministic session population, placed by predicted
// interference.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }
